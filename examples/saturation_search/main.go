// Saturation search: locate the saturation point of each allocation
// scheme with the binary-search helper, then check the headline VIX gain
// is stable across seeds with the replication helper. This is the
// workflow for evaluating a new allocator or topology with the library:
// find where it saturates, then make sure the number is not a
// single-seed fluke.
package main

import (
	"fmt"
	"log"

	"vix"
)

func main() {
	topo := vix.NewMeshTopology(8, 8)
	p := vix.DefaultExperimentParams()
	p.Warmup, p.Measure = 1000, 3000

	fmt.Println("Saturation points on the 8x8 mesh (95% acceptance):")
	schemes := []struct {
		label string
		kind  vix.AllocatorKind
		k     int
	}{
		{"IF", vix.AllocSeparableIF, 1},
		{"WF", vix.AllocWavefront, 1},
		{"VIX", vix.AllocSeparableIF, 2},
	}
	for _, s := range schemes {
		res, err := vix.FindSaturation(topo, s.label, s.kind, s.k, p, 0.95)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s saturates at %.3f packets/cycle/node (latency there: %.1f cycles)\n",
			s.label, res.Rate, res.Latency)
	}

	fmt.Println("\nSeed stability of saturation throughput (4 seeds):")
	seeds := []uint64{1, 2, 3, 4}
	for _, s := range schemes {
		rep, err := vix.ReplicateSaturation(topo, s.label, s.kind, s.k, p, seeds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s %.4f ± %.4f flits/cycle/node (min %.4f, max %.4f)\n",
			s.label, rep.Mean, rep.StdDev, rep.Min, rep.Max)
	}
	fmt.Println("\nThe VIX-vs-IF gap is far larger than the seed-to-seed spread:")
	fmt.Println("the throughput gain is a property of the crossbar, not of the seed.")
}
