package experiments

import (
	"vix/internal/topology"
)

// SaturationResult reports the located saturation point of a
// configuration.
type SaturationResult struct {
	// Rate is the highest offered load (packets/cycle/node) the network
	// still accepts within tolerance.
	Rate float64
	// Latency is the average packet latency at that rate.
	Latency float64
	// Throughput is accepted flits/cycle/node at that rate.
	Throughput float64
}

// FindSaturation binary-searches for the saturation injection rate of a
// scheme on a topology: the largest offered load whose accepted packet
// throughput stays within accept (e.g. 0.95) of the offered load. The
// search brackets [lo, hi] in packets/cycle/node and runs probes of
// p.Warmup+p.Measure cycles each.
func FindSaturation(topo *topology.Topology, s Scheme, p Params, accept float64) (SaturationResult, error) {
	lo, hi := 0.005, 1.0/float64(p.PacketSize)
	var best SaturationResult
	probe := func(rate float64) (bool, SaturationResult, error) {
		snap, err := runOne(topo, s, p, rate, false)
		if err != nil {
			return false, SaturationResult{}, err
		}
		res := SaturationResult{Rate: rate, Latency: snap.AvgLatency, Throughput: snap.ThroughputFlits}
		return snap.ThroughputPackets >= accept*rate, res, nil
	}
	// Ensure the bracket is valid: lo must accept, otherwise report it
	// directly; hi is beyond saturation for every scheme studied.
	ok, res, err := probe(lo)
	if err != nil {
		return SaturationResult{}, err
	}
	if !ok {
		return res, nil
	}
	best = res
	for i := 0; i < 10 && hi-lo > 0.002; i++ {
		mid := (lo + hi) / 2
		ok, res, err := probe(mid)
		if err != nil {
			return SaturationResult{}, err
		}
		if ok {
			lo, best = mid, res
		} else {
			hi = mid
		}
	}
	return best, nil
}
