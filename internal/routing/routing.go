// Package routing implements the deterministic dimension-order routing of
// the paper's methodology for all three evaluated topologies, plus the
// lookahead helper that lets the three-stage pipeline overlap route
// computation with allocation.
//
// Dimension-order routing resolves the X dimension completely before the
// Y dimension. On the mesh and concentrated mesh that means hop-by-hop
// east/west then north/south; on the flattened butterfly a single direct
// hop per dimension. X-before-Y with one VC pool is deadlock-free on all
// three.
package routing

import (
	"fmt"

	"vix/internal/topology"
)

// Func computes the output port a packet destined to node dst must take
// at the given router.
type Func func(t *topology.Topology, router, dst int) int

// DOR returns the dimension-order routing function for t's kind.
func DOR(t *topology.Topology) Func {
	switch t.Kind {
	case topology.KindMesh, topology.KindCMesh:
		return meshDOR
	case topology.KindTorus:
		return torusDOR
	case topology.KindFBfly:
		return fbflyDOR
	default:
		panic(fmt.Sprintf("routing: no DOR for topology kind %q", t.Kind))
	}
}

// meshDOR routes X first, then Y, then ejects at the destination's local
// port.
func meshDOR(t *topology.Topology, router, dst int) int {
	dr := t.NodeRouter[dst]
	if dr == router {
		return t.LocalPort(dst)
	}
	x, y := t.RouterXY(router)
	dx, dy := t.RouterXY(dr)
	switch {
	case dx > x:
		return t.EastPort()
	case dx < x:
		return t.WestPort()
	case dy < y:
		return t.NorthPort()
	default:
		return t.SouthPort()
	}
}

// torusDOR routes X first, then Y, taking the shorter way around each
// ring. Ties (and rings too small to carry wrap links) break toward the
// direct direction — the one mesh DOR takes — so torus routing coincides
// with mesh routing on every pair whose minimal path needs no wrap.
func torusDOR(t *topology.Topology, router, dst int) int {
	dr := t.NodeRouter[dst]
	if dr == router {
		return t.LocalPort(dst)
	}
	x, y := t.RouterXY(router)
	dx, dy := t.RouterXY(dr)
	if dx != x {
		if torusDir(x, dx, t.W) > 0 {
			return t.EastPort()
		}
		return t.WestPort()
	}
	if torusDir(y, dy, t.H) > 0 {
		return t.SouthPort()
	}
	return t.NorthPort()
}

// torusDir returns +1 to travel in the positive direction (east/south)
// on a k-ring from coordinate from to coordinate to, or -1 for the
// negative direction. The shorter way wins; an exact tie breaks toward
// the direct (mesh) direction. The direction is stable hop to hop: the
// chosen way's remaining distance shrinks while the other grows, so a
// packet never reverses mid-ring.
func torusDir(from, to, k int) int {
	pos := to - from
	if pos < 0 {
		pos += k
	}
	neg := k - pos
	switch {
	case pos < neg:
		return 1
	case neg < pos:
		return -1
	case to > from:
		return 1
	default:
		return -1
	}
}

// TorusVCClass returns the dateline VC class a packet destined to dst
// must use on the channel leaving router through outPort, or -1 when the
// hop needs no restriction (ejection and injection hops, and rings too
// small to carry wrap links).
//
// The class is derived from the packet's remaining path, so it needs no
// per-flit state: class 0 while the rest of the traversal in the
// traveled dimension still crosses that ring's wrap edge (the channel
// from coordinate k-1 to 0, or 0 to k-1 in the negative direction),
// class 1 from the wrap crossing onward — and for packets that never
// wrap. Class-0 dependency chains stop at the wrap edge (the wrap
// channel itself is always class 1), class-1 chains never re-enter it
// (a packet requesting the wrap channel still has the crossing ahead,
// making it class 0), and a packet only moves from class 0 to class 1,
// so the channel dependency graph is acyclic: minimal routing on the
// torus is deadlock-free with the two classes. Dimension-order routing
// keeps X and Y dependencies acyclic between each other as on the mesh.
func TorusVCClass(t *topology.Topology, router, outPort, dst int) int {
	c := t.Conn[router][outPort]
	if c.Kind != topology.Link {
		return -1
	}
	px, py := t.RouterXY(c.PeerRouter)
	dx, dy := t.RouterXY(t.NodeRouter[dst])
	var p, d, k, dir int
	switch outPort {
	case t.EastPort():
		p, d, k, dir = px, dx, t.W, 1
	case t.WestPort():
		p, d, k, dir = px, dx, t.W, -1
	case t.SouthPort():
		p, d, k, dir = py, dy, t.H, 1
	case t.NorthPort():
		p, d, k, dir = py, dy, t.H, -1
	default:
		return -1
	}
	if k < 3 {
		return -1 // no wrap links on this ring, nothing to cut
	}
	if (dir > 0 && p > d) || (dir < 0 && p < d) {
		return 0 // the wrap edge is still ahead
	}
	return 1
}

// fbflyDOR takes one direct hop to the destination column, then one to
// the destination row, then ejects.
func fbflyDOR(t *topology.Topology, router, dst int) int {
	dr := t.NodeRouter[dst]
	if dr == router {
		return t.LocalPort(dst)
	}
	x, y := t.RouterXY(router)
	dx, dy := t.RouterXY(dr)
	if dx != x {
		return t.XPort(x, dx)
	}
	return t.YPort(y, dy)
}

// Hops returns the number of router-to-router hops a packet from src to
// dst traverses under route (not counting injection/ejection). It panics
// if the route does not converge within NumRouters steps, which would
// indicate a routing bug.
func Hops(t *topology.Topology, route Func, src, dst int) int {
	r := t.NodeRouter[src]
	hops := 0
	for r != t.NodeRouter[dst] {
		p := route(t, r, dst)
		c := t.Conn[r][p]
		if c.Kind != topology.Link {
			panic(fmt.Sprintf("routing: route from router %d to node %d chose non-link port %d", r, dst, p))
		}
		r = c.PeerRouter
		hops++
		if hops > t.NumRouters {
			panic("routing: route did not converge")
		}
	}
	return hops
}
