package lint

import (
	"strings"
	"testing"
)

// FuzzClassifyDirective pins the directive parser's contract on
// arbitrary comment text: it never panics, it only accepts text
// carrying the //vixlint: prefix, an accepted name is always a member
// of the closed set properly delimited in the input, and a malformed
// name always comes back as the unknown-directive shape (name == "")
// so callers report it — malformed directives must produce findings,
// never silent acceptance.
func FuzzClassifyDirective(f *testing.F) {
	for _, seed := range []string{
		"//vixlint:ordered keys sorted before iteration",
		"//vixlint:state",
		"//vixlint:state\tbuf carries only capacity",
		"//vixlint:sate typo",
		"//vixlint:orderedjunk glued suffix",
		"//vixlint:",
		"//vixlint: state leading space",
		"// vixlint:ordered not a directive",
		"/*vixlint:ordered*/",
		"//vixlint:hot",
		"//vixlint:STATE case matters",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		name, rest, ok := classifyDirective(text)
		if ok != strings.HasPrefix(text, directivePrefix) {
			t.Fatalf("classifyDirective(%q) ok = %v; prefix presence = %v", text, ok, !ok)
		}
		if !ok {
			if name != "" || rest != "" {
				t.Fatalf("classifyDirective(%q) rejected the prefix but returned (%q, %q)", text, name, rest)
			}
			return
		}
		after := strings.TrimPrefix(text, directivePrefix)
		if name == "" {
			// Unknown-directive shape: the offending token must not be a
			// member of the closed set (it would have been accepted), and
			// the token never spans a delimiter.
			if _, known := knownDirectives[rest]; known {
				t.Fatalf("classifyDirective(%q) reported known name %q as unknown", text, rest)
			}
			if strings.ContainsAny(rest, " \t") {
				t.Fatalf("classifyDirective(%q) returned token %q spanning a delimiter", text, rest)
			}
			return
		}
		if _, known := knownDirectives[name]; !known {
			t.Fatalf("classifyDirective(%q) accepted name %q outside the closed set", text, name)
		}
		if after != name && !strings.HasPrefix(after, name+" ") && !strings.HasPrefix(after, name+"\t") {
			t.Fatalf("classifyDirective(%q) accepted name %q that is not delimited in the input", text, name)
		}
		if rest != strings.TrimSpace(rest) {
			t.Fatalf("classifyDirective(%q) returned untrimmed rest %q", text, rest)
		}
	})
}
