package network

// Network's threshold is declared config in the manifest, but retune —
// reached from Step, so inside the simulation cone — rewrites it
// mid-run.
type Network struct {
	cycle     int
	threshold int
}

// Step advances one cycle.
func (n *Network) Step() {
	n.cycle++
	if n.cycle%100 == 0 {
		n.retune()
	}
}

// retune mutates supposedly frozen configuration — the seeded
// violation.
func (n *Network) retune() {
	n.threshold = n.cycle / 2
}
