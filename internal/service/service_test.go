package service_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"vix/internal/service"
	"vix/internal/store"
)

// smallSpec is a fast-but-real experiment body: a full 8x8 mesh, short
// windows. Offsetting the seed keeps specs distinct where tests need
// misses.
func smallSpec(seed uint64) string {
	return fmt.Sprintf(`{"warmup": 20, "measure": 60, "packet_size": 2, "injection_rate": 0.02, "seed": %d}`, seed)
}

// gridBody is a one-shot suite: two cases, closed at creation.
func gridBody() string {
	return fmt.Sprintf(`{"name": "grid", "cases": [{"spec": %s}, {"spec": %s}], "close": true}`,
		smallSpec(1), smallSpec(2))
}

// newTestServer starts a service over the given store (nil for a fresh
// in-memory one) and returns it with its HTTP front end.
func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := svc.Close(); err != nil {
			t.Errorf("service.Close: %v", err)
		}
	})
	return svc, ts
}

// post sends a JSON body and decodes the response envelope.
func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	return resp.StatusCode, data
}

// get fetches a URL to completion.
func get(t *testing.T, url string, header map[string]string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, data
}

// postGridE creates a one-shot suite and returns its ID. It is safe to
// call from spawned goroutines (no testing.T).
func postGridE(base, body string) (string, error) {
	resp, err := http.Post(base+"/suites", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("POST /suites = %d, want 201 (body %s)", resp.StatusCode, data)
	}
	var sr struct {
		Suite string `json:"suite"`
	}
	if err := json.Unmarshal(data, &sr); err != nil {
		return "", fmt.Errorf("decoding suite response %q: %w", data, err)
	}
	if sr.Suite == "" {
		return "", fmt.Errorf("no suite ID in %s", data)
	}
	return sr.Suite, nil
}

// postGrid is postGridE with fatal error handling.
func postGrid(t *testing.T, base, body string) string {
	t.Helper()
	suite, err := postGridE(base, body)
	if err != nil {
		t.Fatal(err)
	}
	return suite
}

// streamResultsE blocks until the suite's JSONL result stream completes
// and returns the raw body. Goroutine-safe (no testing.T).
func streamResultsE(base, suite string) ([]byte, error) {
	resp, err := http.Get(base + "/suites/" + suite + "/results")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET results = %d (body %s)", resp.StatusCode, data)
	}
	return data, nil
}

// streamResults is streamResultsE with fatal error handling.
func streamResults(t *testing.T, base, suite string) []byte {
	t.Helper()
	data, err := streamResultsE(base, suite)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSuiteLifecycle drives the hive-style flow end to end: open suite,
// add cases one at a time, close, stream results in case order.
func TestSuiteLifecycle(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Runners: 2})

	code, data := post(t, ts.URL+"/suites", `{"name": "manual"}`)
	if code != http.StatusCreated {
		t.Fatalf("POST /suites = %d (body %s)", code, data)
	}
	var created struct {
		Suite string `json:"suite"`
	}
	if err := json.Unmarshal(data, &created); err != nil {
		t.Fatal(err)
	}
	if created.Suite != "s1" {
		t.Fatalf("first suite ID = %q, want s1", created.Suite)
	}

	for i := 0; i < 2; i++ {
		code, data = post(t, ts.URL+"/suites/s1/cases",
			fmt.Sprintf(`{"name": "point-%d", "spec": %s}`, i, smallSpec(uint64(10+i))))
		if code != http.StatusCreated {
			t.Fatalf("POST cases = %d (body %s)", code, data)
		}
	}
	code, data = post(t, ts.URL+"/suites/s1/close", "")
	if code != http.StatusOK {
		t.Fatalf("POST close = %d (body %s)", code, data)
	}

	body := streamResults(t, ts.URL, "s1")
	lines := nonEmptyLines(body)
	if len(lines) != 2 {
		t.Fatalf("stream has %d lines, want 2:\n%s", len(lines), body)
	}
	for i, ln := range lines {
		var res struct {
			Case   string          `json:"case"`
			Name   string          `json:"name"`
			ID     string          `json:"id"`
			Status string          `json:"status"`
			Value  json.RawMessage `json:"value"`
		}
		if err := json.Unmarshal([]byte(ln), &res); err != nil {
			t.Fatalf("line %d %q: %v", i, ln, err)
		}
		if want := fmt.Sprintf("c%d", i); res.Case != want {
			t.Errorf("line %d is case %q, want %q (stream must be in case order)", i, res.Case, want)
		}
		if res.Status != "done" || len(res.Value) == 0 || res.ID == "" {
			t.Errorf("line %d = %s, want done with a value and store ID", i, ln)
		}
		if want := fmt.Sprintf("point-%d", i); res.Name != want {
			t.Errorf("line %d name = %q, want %q", i, res.Name, want)
		}
	}

	// Closed suites reject further cases.
	code, data = post(t, ts.URL+"/suites/s1/cases", fmt.Sprintf(`{"spec": %s}`, smallSpec(99)))
	if code != http.StatusConflict {
		t.Errorf("POST cases after close = %d, want 409 (body %s)", code, data)
	}
	// Unknown suites 404.
	if code, _ = get(t, ts.URL+"/suites/s999", nil); code != http.StatusNotFound {
		t.Errorf("GET unknown suite = %d, want 404", code)
	}
}

// TestCacheExactness pins the memoization contract at the HTTP surface:
// POSTing the same grid twice yields a byte-identical result stream,
// and the second pass performs zero simulations — every case is served
// from the store.
func TestCacheExactness(t *testing.T) {
	st := store.Memory()
	svc, ts := newTestServer(t, service.Config{Store: st, Runners: 2})

	first := streamResults(t, ts.URL, postGrid(t, ts.URL, gridBody()))
	misses := svc.StoreStats().Misses
	if misses != 2 {
		t.Fatalf("first grid simulated %d cases, want 2", misses)
	}

	second := streamResults(t, ts.URL, postGrid(t, ts.URL, gridBody()))
	if string(first) != string(second) {
		t.Errorf("second stream differs from first:\n--- first\n%s--- second\n%s", first, second)
	}
	stats := svc.StoreStats()
	if stats.Misses != misses {
		t.Errorf("second grid simulated %d new cases, want 0 (served from store)", stats.Misses-misses)
	}
	if stats.Served() != 2 {
		t.Errorf("store served %d results, want 2", stats.Served())
	}
}

// TestTwoClientsSingleFlight is the tentpole acceptance test: two
// clients concurrently POST an identical spec; both get byte-identical
// results and exactly one simulation runs.
func TestTwoClientsSingleFlight(t *testing.T) {
	svc, ts := newTestServer(t, service.Config{Runners: 2})

	body := fmt.Sprintf(`{"cases": [{"spec": %s}], "close": true}`, smallSpec(7))
	var (
		wg      sync.WaitGroup
		streams [2][]byte
		errs    [2]error
	)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			suite, err := postGridE(ts.URL, body)
			if err != nil {
				errs[i] = err
				return
			}
			streams[i], errs[i] = streamResultsE(ts.URL, suite)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	if len(streams[0]) == 0 || string(streams[0]) != string(streams[1]) {
		t.Errorf("clients saw different results:\n--- A\n%s--- B\n%s", streams[0], streams[1])
	}
	if misses := svc.StoreStats().Misses; misses != 1 {
		t.Errorf("identical spec simulated %d times across two clients, want exactly 1", misses)
	}
	if served := svc.StoreStats().Served(); served != 1 {
		t.Errorf("store served %d results, want 1 (hit or in-flight share)", served)
	}
}

// TestRestartServesFromStore completes the acceptance criterion: a new
// server over the same on-disk store answers a previously-simulated
// spec without re-simulating.
func TestRestartServesFromStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")

	svc1, err := service.New(service.Config{StorePath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(svc1.Handler())
	first := streamResults(t, ts1.URL, postGrid(t, ts1.URL, gridBody()))
	if m := svc1.StoreStats().Misses; m != 2 {
		t.Fatalf("first server simulated %d cases, want 2", m)
	}
	ts1.Close()
	if err := svc1.Close(); err != nil {
		t.Fatalf("closing first server: %v", err)
	}

	svc2, ts2 := newTestServer(t, service.Config{StorePath: path})
	second := streamResults(t, ts2.URL, postGrid(t, ts2.URL, gridBody()))
	if string(first) != string(second) {
		t.Errorf("restarted server streamed different results:\n--- before\n%s--- after\n%s", first, second)
	}
	stats := svc2.StoreStats()
	if stats.Misses != 0 {
		t.Errorf("restarted server simulated %d cases, want 0 (on-disk store)", stats.Misses)
	}
	if stats.Hits != 2 {
		t.Errorf("restarted server hit the store %d times, want 2", stats.Hits)
	}
}

// TestValidationErrors pins the 400 contract: malformed specs are
// rejected before admission with every offending field named by path.
func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})

	body := `{"cases": [{"spec": {"allocator": "magic", "injection_rate": 7}}], "close": true}`
	code, data := post(t, ts.URL+"/suites", body)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid spec = %d, want 400 (body %s)", code, data)
	}
	var resp struct {
		Error  string `json:"error"`
		Fields []struct {
			Field string `json:"field"`
			Msg   string `json:"msg"`
		} `json:"fields"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("decoding 400 body %q: %v", data, err)
	}
	if len(resp.Fields) != 2 {
		t.Fatalf("400 names %d fields, want 2: %s", len(resp.Fields), data)
	}
	if resp.Fields[0].Field != "cases[0].spec.allocator" {
		t.Errorf("field path = %q, want cases[0].spec.allocator", resp.Fields[0].Field)
	}
	if resp.Fields[1].Field != "cases[0].spec.injection_rate" {
		t.Errorf("field path = %q, want cases[0].spec.injection_rate", resp.Fields[1].Field)
	}

	// Unknown JSON fields in a spec are typos, not silently ignored.
	code, data = post(t, ts.URL+"/suites", `{"cases": [{"spec": {"allocator": "if", "virtual_imputs": 2}}]}`)
	if code != http.StatusBadRequest {
		t.Errorf("unknown spec field = %d, want 400 (body %s)", code, data)
	}
	// A validation failure admits nothing: no suite was created.
	if code, _ := get(t, ts.URL+"/suites/s3", nil); code != http.StatusNotFound {
		t.Errorf("failed submissions must not leave suites behind; GET s3 = %d", code)
	}
}

// TestQuota drives the token bucket with an injected clock: a client
// that exhausts its burst gets 429 with a Retry-After hint and is
// re-admitted once the bucket refills.
func TestQuota(t *testing.T) {
	var now int64
	_, ts := newTestServer(t, service.Config{
		QuotaRate:  1, // one case per second
		QuotaBurst: 2,
		Now:        func() int64 { return now },
	})

	one := func(client string, seed uint64) (int, []byte, http.Header) {
		req, err := http.NewRequest("POST", ts.URL+"/suites",
			strings.NewReader(fmt.Sprintf(`{"cases": [{"spec": %s}], "close": true}`, smallSpec(seed))))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Vix-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data, resp.Header
	}

	// Burst of 2 admits two cases, rejects the third.
	for i := 0; i < 2; i++ {
		if code, data, _ := one("alice", uint64(20+i)); code != http.StatusCreated {
			t.Fatalf("submission %d = %d, want 201 (body %s)", i, code, data)
		}
	}
	code, data, hdr := one("alice", 22)
	if code != http.StatusTooManyRequests {
		t.Fatalf("third submission = %d, want 429 (body %s)", code, data)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 response has no Retry-After header")
	}

	// Another client has its own bucket.
	if code, data, _ := one("bob", 23); code != http.StatusCreated {
		t.Errorf("other client = %d, want 201 (body %s)", code, data)
	}

	// One refill second re-admits alice.
	now += 1e9
	if code, data, _ := one("alice", 24); code != http.StatusCreated {
		t.Errorf("after refill = %d, want 201 (body %s)", code, data)
	}
}

// TestSSEStream exercises the event-stream flavour of /results: same
// payloads framed as SSE events, terminated by a done event.
func TestSSEStream(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	suite := postGrid(t, ts.URL, gridBody())

	code, body := get(t, ts.URL+"/suites/"+suite+"/results", map[string]string{"Accept": "text/event-stream"})
	if code != http.StatusOK {
		t.Fatalf("SSE GET = %d", code)
	}
	text := string(body)
	if got := strings.Count(text, "event: result\n"); got != 2 {
		t.Errorf("SSE stream has %d result events, want 2:\n%s", got, text)
	}
	if !strings.Contains(text, "event: done\n") {
		t.Errorf("SSE stream has no done event:\n%s", text)
	}
}

// TestStatusAndStats covers the observation endpoints: suite status
// reports per-case provenance, /statsz mirrors store accounting, and
// /healthz answers.
func TestStatusAndStats(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	suite := postGrid(t, ts.URL, gridBody())
	streamResults(t, ts.URL, suite) // wait for completion

	code, data := get(t, ts.URL+"/suites/"+suite, nil)
	if code != http.StatusOK {
		t.Fatalf("GET suite = %d", code)
	}
	var st struct {
		Suite  string `json:"suite"`
		Closed bool   `json:"closed"`
		Done   bool   `json:"done"`
		Cases  []struct {
			Case      string `json:"case"`
			Status    string `json:"status"`
			WallNanos int64  `json:"wall_ns"`
		} `json:"cases"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding status %q: %v", data, err)
	}
	if !st.Closed || !st.Done || len(st.Cases) != 2 {
		t.Fatalf("status = %s, want closed+done with 2 cases", data)
	}
	for _, c := range st.Cases {
		if c.Status != "done" || c.WallNanos <= 0 {
			t.Errorf("case %s: status %q wall %d, want done with telemetry", c.Case, c.Status, c.WallNanos)
		}
	}

	code, data = get(t, ts.URL+"/statsz", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /statsz = %d", code)
	}
	var stats struct {
		Suites  int   `json:"suites"`
		Cases   int   `json:"cases"`
		Entries int   `json:"store_entries"`
		Misses  int64 `json:"store_misses"`
	}
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Suites != 1 || stats.Cases != 2 || stats.Entries != 2 || stats.Misses != 2 {
		t.Errorf("statsz = %s, want 1 suite, 2 cases, 2 entries, 2 misses", data)
	}

	if code, data = get(t, ts.URL+"/healthz", nil); code != http.StatusOK || string(data) != "ok\n" {
		t.Errorf("GET /healthz = %d %q, want 200 ok", code, data)
	}
}

// TestDrain pins the shutdown contract: Close runs every admitted case
// to completion, and open result streams terminate once the suite is
// drained even if the client never closed it.
func TestDrain(t *testing.T) {
	svc, err := service.New(service.Config{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// An OPEN suite (no close flag): its stream only ends via drain.
	body := fmt.Sprintf(`{"cases": [{"spec": %s}, {"spec": %s}]}`, smallSpec(31), smallSpec(32))
	suite := postGrid(t, ts.URL, body)

	done := make(chan []byte, 1)
	go func() {
		data, _ := streamResultsE(ts.URL, suite)
		done <- data
	}()

	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data := <-done
	if got := len(nonEmptyLines(data)); got != 2 {
		t.Errorf("drained stream has %d lines, want both admitted cases:\n%s", got, data)
	}
	if m := svc.StoreStats().Misses; m != 2 {
		t.Errorf("drain completed %d simulations, want 2", m)
	}

	// A draining server rejects new suites.
	if code, _ := post(t, ts.URL+"/suites", `{}`); code != http.StatusServiceUnavailable {
		t.Errorf("POST /suites after Close = %d, want 503", code)
	}
}

// nonEmptyLines splits a JSONL body.
func nonEmptyLines(b []byte) []string {
	var out []string
	for _, ln := range strings.Split(string(b), "\n") {
		if strings.TrimSpace(ln) != "" {
			out = append(out, ln)
		}
	}
	return out
}
