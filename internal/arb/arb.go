// Package arb implements the arbiter primitives used by NoC switch and
// virtual-channel allocators: programmable-priority round-robin arbiters
// and matrix (least-recently-granted) arbiters.
//
// Arbiters separate the combinational decision (Arbitrate) from the
// priority-state update (Ack). Separable allocators in the iSLIP style
// update an arbiter's priority only when its choice results in an actual
// grant, which is why the two steps are distinct: an input arbiter whose
// winning virtual channel subsequently loses output arbitration must keep
// its pointer so the same VC retains priority next cycle.
package arb

// Arbiter selects one winner from a set of requestors.
type Arbiter interface {
	// Arbitrate returns the index of the winning requestor given the
	// request vector, or -1 if no requests are asserted. It does not
	// change arbiter state. len(req) must equal Size.
	Arbitrate(req []bool) int
	// Ack informs the arbiter that the given requestor's grant was
	// accepted, updating priority state so the arbiter is fair over time.
	Ack(winner int)
	// Size returns the number of requestors the arbiter serves.
	Size() int
	// Reset restores the initial priority state.
	Reset()
}

// RoundRobin is a rotating-priority arbiter. After a grant is acknowledged
// the requestor immediately after the winner has the highest priority,
// giving each requestor a fair share under persistent contention.
type RoundRobin struct {
	n   int
	ptr int
}

// NewRoundRobin returns a round-robin arbiter over n requestors.
// It panics if n <= 0.
func NewRoundRobin(n int) *RoundRobin {
	if n <= 0 {
		panic("arb: NewRoundRobin with non-positive size")
	}
	return &RoundRobin{n: n}
}

// Size returns the number of requestors.
func (a *RoundRobin) Size() int { return a.n }

// Arbitrate returns the requesting index at or after the priority pointer,
// wrapping around; -1 if req is all false.
func (a *RoundRobin) Arbitrate(req []bool) int {
	if len(req) != a.n {
		panic("arb: request vector size mismatch")
	}
	for idx := a.ptr; idx < a.n; idx++ {
		if req[idx] {
			return idx
		}
	}
	for idx := 0; idx < a.ptr; idx++ {
		if req[idx] {
			return idx
		}
	}
	return -1
}

// Ack moves the priority pointer to the requestor after winner.
func (a *RoundRobin) Ack(winner int) {
	if winner < 0 || winner >= a.n {
		panic("arb: Ack winner out of range")
	}
	a.ptr = winner + 1
	if a.ptr == a.n {
		a.ptr = 0
	}
}

// Reset restores priority to requestor 0.
func (a *RoundRobin) Reset() { a.ptr = 0 }

// Matrix is a least-recently-granted arbiter. It maintains a triangular
// priority matrix where prio[i][j] means requestor i beats requestor j.
// When a grant is acknowledged the winner's priority drops below everyone
// else's, which yields strong fairness (each requestor is served before
// any other requestor is served twice).
type Matrix struct {
	n    int
	prio [][]bool
}

// NewMatrix returns a matrix arbiter over n requestors. It panics if
// n <= 0.
func NewMatrix(n int) *Matrix {
	m := &Matrix{n: n}
	if n <= 0 {
		panic("arb: NewMatrix with non-positive size")
	}
	m.prio = make([][]bool, n)
	for i := range m.prio {
		m.prio[i] = make([]bool, n)
	}
	m.Reset()
	return m
}

// Size returns the number of requestors.
func (m *Matrix) Size() int { return m.n }

// Reset restores the initial priority order 0 > 1 > ... > n-1.
func (m *Matrix) Reset() {
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			m.prio[i][j] = i < j
		}
	}
}

// Arbitrate returns the requestor that beats all other requestors, or -1
// if req is all false.
func (m *Matrix) Arbitrate(req []bool) int {
	if len(req) != m.n {
		panic("arb: request vector size mismatch")
	}
	for i := 0; i < m.n; i++ {
		if !req[i] {
			continue
		}
		wins := true
		for j := 0; j < m.n; j++ {
			if j != i && req[j] && !m.prio[i][j] {
				wins = false
				break
			}
		}
		if wins {
			return i
		}
	}
	return -1
}

// Ack lowers the winner's priority below all other requestors.
func (m *Matrix) Ack(winner int) {
	if winner < 0 || winner >= m.n {
		panic("arb: Ack winner out of range")
	}
	for j := 0; j < m.n; j++ {
		if j != winner {
			m.prio[winner][j] = false
			m.prio[j][winner] = true
		}
	}
}
