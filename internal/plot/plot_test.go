package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasicShape(t *testing.T) {
	out := Render("latency vs load", []Series{
		{Label: "IF", X: []float64{0.01, 0.05, 0.09}, Y: []float64{20, 30, 60}},
		{Label: "VIX", X: []float64{0.01, 0.05, 0.09}, Y: []float64{20, 28, 45}},
	}, 40, 10)
	if !strings.Contains(out, "latency vs load") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* IF") || !strings.Contains(out, "o VIX") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("markers missing from canvas")
	}
	// Axis extents appear.
	if !strings.Contains(out, "60") || !strings.Contains(out, "20") {
		t.Errorf("y extents missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + xlabels + 2 legend lines
	if want := 1 + 10 + 1 + 1 + 2; len(lines) != want {
		t.Errorf("chart has %d lines, want %d:\n%s", len(lines), want, out)
	}
}

// Monotonic data places the max-Y point on the top row and min-Y on the
// bottom row.
func TestRenderScaling(t *testing.T) {
	out := Render("", []Series{
		{Label: "s", X: []float64{0, 1}, Y: []float64{0, 10}},
	}, 20, 5)
	lines := strings.Split(out, "\n")
	top, bottom := lines[0], lines[4]
	if !strings.Contains(top, "*") {
		t.Errorf("max point not on top row:\n%s", out)
	}
	if !strings.Contains(bottom, "*") {
		t.Errorf("min point not on bottom row:\n%s", out)
	}
}

func TestRenderIgnoresNonFinite(t *testing.T) {
	out := Render("t", []Series{
		{Label: "s", X: []float64{0, 1, 2}, Y: []float64{1, math.Inf(1), math.NaN()}},
	}, 20, 5)
	if strings.Contains(out, "no finite data") {
		t.Error("finite point ignored")
	}
	out = Render("t", []Series{
		{Label: "s", X: []float64{0}, Y: []float64{math.NaN()}},
	}, 20, 5)
	if !strings.Contains(out, "no finite data") {
		t.Error("all-NaN series should report no data")
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	// Single point: constant X and Y must not divide by zero.
	out := Render("pt", []Series{{Label: "s", X: []float64{3}, Y: []float64{7}}}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Errorf("single point not rendered:\n%s", out)
	}
}

func TestRenderClampsTinyDimensions(t *testing.T) {
	out := Render("tiny", []Series{{Label: "s", X: []float64{0, 1}, Y: []float64{0, 1}}}, 1, 1)
	if len(out) == 0 {
		t.Fatal("empty chart")
	}
}

func TestMismatchedXYLengthsSafe(t *testing.T) {
	out := Render("mm", []Series{{Label: "s", X: []float64{0, 1, 2}, Y: []float64{5}}}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Errorf("prefix points not rendered:\n%s", out)
	}
}
