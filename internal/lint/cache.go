package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"vix/internal/sim"
)

// This file implements the content-hash finding cache behind incremental
// `make lint`. The module is indexed without type checking (file bytes
// are hashed, imports are read with parser.ImportsOnly), and each
// package gets a key chaining:
//
//	sha256(cacheVersion, ConcurrencyAllowlist, ShardOwnershipRoots,
//	       module path, package path, each file's name and content
//	       hash, and the keys of every module-local import)
//
// The ownership-root fingerprint is in the chain because editing the
// root table changes which writes the parallel/* rules accept without
// touching any source file; //vixlint:hot markers need no such entry —
// they live in file content, so the file hashes already cover them.
//
// Dependency keys chain recursively, so a package's key covers its
// transitive module dependencies: the inter-procedural passes (reach,
// escape, exhaustiveness) read dependency bodies, and an edit anywhere
// below a package must invalidate it. The converse edit — a new
// interface implementation in a package that does not import the
// changed one — can in principle alter class-hierarchy-analysis edges
// without touching the key; DESIGN.md section 11 documents why that
// imprecision is accepted.
//
// Entries are one JSON file per package under .vixlint/, named by a
// hash of the import path, holding the key and the package's findings
// with module-root-relative file paths (so entries survive moving the
// checkout). A lookup whose stored key mismatches is a miss; on a fully
// warm run every package hits and the module is never type-checked.

// cacheVersion invalidates every entry when the analyzers change
// behaviour. Bump it in any commit that alters rules or messages.
// (-2: parallel/* write-effect rules and the ownership fingerprint
// joined the key chain.)
const cacheVersion = "vixlint-cache-3"

// cacheDirName is the default cache directory under the module root.
const cacheDirName = ".vixlint"

// indexedPackage is one package as seen by the cheap no-typecheck walk.
type indexedPackage struct {
	path      string            // import path
	dir       string            // absolute directory
	fileNames []string          // non-test .go files, sorted
	fileHash  map[string]string // file name -> content sha256 (hex)
	imports   []string          // module-local imports, sorted
	key       string            // chained content hash (hex)
}

// moduleIndex is the cheap module snapshot used for cache keying. Its
// walk mirrors Module.discover exactly: same directory skip rules, same
// file selection, so the indexed package set matches what Load checks.
type moduleIndex struct {
	root     string
	modPath  string
	packages []*indexedPackage // sorted by import path
	byPath   map[string]*indexedPackage
}

// indexModule snapshots the module at root without parsing bodies or
// type-checking anything.
func indexModule(root string) (*moduleIndex, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	idx := &moduleIndex{
		root:    root,
		modPath: modPath,
		byPath:  make(map[string]*indexedPackage),
	}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		return idx.indexDir(path)
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(idx.packages, func(i, j int) bool { return idx.packages[i].path < idx.packages[j].path })
	idx.computeKeys()
	return idx, nil
}

// indexDir hashes one directory's non-test Go files and records its
// module-local imports.
func (idx *moduleIndex) indexDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	p := &indexedPackage{dir: dir, fileNames: names, fileHash: make(map[string]string)}
	imports := make(map[string]bool)
	fset := token.NewFileSet()
	for _, n := range names {
		full := filepath.Join(dir, n)
		data, err := os.ReadFile(full)
		if err != nil {
			return err
		}
		sum := sha256.Sum256(data)
		p.fileHash[n] = hex.EncodeToString(sum[:])
		f, err := parser.ParseFile(fset, full, data, parser.ImportsOnly)
		if err != nil {
			return fmt.Errorf("lint: %v", err)
		}
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if ip == idx.modPath || strings.HasPrefix(ip, idx.modPath+"/") {
				imports[ip] = true
			}
		}
	}
	rel, err := filepath.Rel(idx.root, dir)
	if err != nil {
		return err
	}
	p.path = idx.modPath
	if rel != "." {
		p.path = idx.modPath + "/" + filepath.ToSlash(rel)
	}
	p.imports = sim.SortedKeys(imports)
	idx.packages = append(idx.packages, p)
	idx.byPath[p.path] = p
	return nil
}

// allowlistFingerprint folds the ConcurrencyAllowlist into cache keys:
// growing or shrinking it changes which go statements are sources, and
// that must invalidate every entry that could be affected.
func allowlistFingerprint() string {
	return strings.Join(sim.SortedKeys(ConcurrencyAllowlist), ",")
}

// computeKeys assigns every package its chained content-hash key.
func (idx *moduleIndex) computeKeys() {
	memo := make(map[string]string)
	visiting := make(map[string]bool)
	var keyOf func(p *indexedPackage) string
	keyOf = func(p *indexedPackage) string {
		if k, ok := memo[p.path]; ok {
			return k
		}
		if visiting[p.path] {
			return "cycle" // impossible in a compilable module; degrade safely
		}
		visiting[p.path] = true
		h := sha256.New()
		io.WriteString(h, cacheVersion+"\n")
		io.WriteString(h, allowlistFingerprint()+"\n")
		io.WriteString(h, ownershipFingerprint()+"\n")
		io.WriteString(h, idx.modPath+"\n")
		io.WriteString(h, p.path+"\n")
		for _, name := range p.fileNames {
			fmt.Fprintf(h, "%s %s\n", name, p.fileHash[name])
		}
		for _, dep := range p.imports {
			dp := idx.byPath[dep]
			if dp == nil {
				continue // import of a module path with no Go files
			}
			fmt.Fprintf(h, "dep %s %s\n", dep, keyOf(dp))
		}
		delete(visiting, p.path)
		k := hex.EncodeToString(h.Sum(nil))
		memo[p.path] = k
		return k
	}
	for _, p := range idx.packages {
		p.key = keyOf(p)
	}
}

// cacheEntry is the stored JSON for one package.
type cacheEntry struct {
	Key      string          `json:"key"`
	Package  string          `json:"package"`
	Findings []cachedFinding `json:"findings"`
}

// cachedFinding is a Finding with a module-root-relative path.
type cachedFinding struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column,omitempty"`
	Rule   string `json:"rule"`
	Msg    string `json:"msg"`
}

// cacheFileName maps an import path to its entry file.
func cacheFileName(pkgPath string) string {
	sum := sha256.Sum256([]byte(pkgPath))
	return hex.EncodeToString(sum[:8]) + ".json"
}

// loadCacheEntry returns the stored entry for p if its key matches.
func loadCacheEntry(dir string, p *indexedPackage) (*cacheEntry, bool) {
	data, err := os.ReadFile(filepath.Join(dir, cacheFileName(p.path)))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Key != p.key || e.Package != p.path {
		return nil, false
	}
	return &e, true
}

// resolve converts the entry's findings back to absolute positions
// under root, matching what a live run would report.
func (e *cacheEntry) resolve(root string) []Finding {
	out := make([]Finding, 0, len(e.Findings))
	for _, f := range e.Findings {
		name := f.File
		if !filepath.IsAbs(name) {
			name = filepath.Join(root, filepath.FromSlash(f.File))
		}
		out = append(out, Finding{
			Pos:  token.Position{Filename: name, Line: f.Line, Column: f.Column},
			Rule: f.Rule,
			Msg:  f.Msg,
		})
	}
	return out
}

// storeCacheEntry writes p's findings (paths made root-relative) under
// its current key. Failures are deliberately ignored: the cache is an
// optimisation, and a read-only checkout must not fail the lint run.
func storeCacheEntry(dir, root string, p *indexedPackage, fs []Finding) {
	e := cacheEntry{Key: p.key, Package: p.path, Findings: []cachedFinding{}}
	for _, f := range fs {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		e.Findings = append(e.Findings, cachedFinding{
			File:   name,
			Line:   f.Pos.Line,
			Column: f.Pos.Column,
			Rule:   f.Rule,
			Msg:    f.Msg,
		})
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.MarshalIndent(&e, "", "\t")
	if err != nil {
		return
	}
	os.WriteFile(filepath.Join(dir, cacheFileName(p.path)), data, 0o644)
}
