package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide static call graph the inter-procedural
// passes (taint propagation, the self-check probes) run over. Nodes are
// the module's declared functions and methods with bodies; edges come
// from three resolution strategies, in decreasing order of precision:
//
//   - direct calls: `f(...)` and `pkg.F(...)` resolve through the type
//     checker's Uses map to the callee's canonical *types.Func;
//   - concrete method calls: `x.M(...)` where x has a concrete type
//     resolve through the Selections map to the declared method;
//   - interface method calls: `i.M(...)` where i is an interface resolve
//     by class-hierarchy analysis to the M of every module type whose
//     method set implements the interface (an over-approximation: the
//     dynamic type at run time is some subset of these);
//   - indirect calls through func-typed values: `fn(...)` where fn is a
//     variable, field, or parameter resolve to every module function
//     whose address is taken somewhere in the module and whose signature
//     is identical to the call's (again an over-approximation).
//
// Function literals are folded into their enclosing declaration: a
// closure's calls become the enclosing function's edges, and (in
// taint.go) a closure's determinism sources become the enclosing
// function's sources. Creating a clock-reading closure taints the
// creator, which is the conservative direction.
//
// Method values (`x.M` referenced without calling) are not treated as
// address-taken: resolving them requires binding a receiver, and no
// simulation code passes bound methods across packages. The limitation
// is documented in DESIGN.md section 11. The shard-ownership pass
// (shardown.go) keeps its own method-value collection for resolving
// sim.Pool job values — that set never feeds general graph edges, so
// taint semantics are unchanged.

// cgNode is one function or method declaration in the call graph.
type cgNode struct {
	fn   *types.Func
	pkg  *Package
	decl *ast.FuncDecl
	// callees are the resolved outgoing edges, deduplicated and sorted
	// into deterministic order (declaration position).
	callees []*types.Func
}

// callGraph is the module-wide static call graph.
type callGraph struct {
	mod *Module
	// funcs lists every node's *types.Func in deterministic order
	// (packages sorted by path, files by name, declarations in source
	// order). All iteration happens over this slice, never over the map.
	funcs []*types.Func
	nodes map[*types.Func]*cgNode
	// callers is the reverse adjacency, built after all edges resolve.
	callers map[*types.Func][]*types.Func
	// taken and resolver are retained after construction so later passes
	// (write effects, shard ownership) resolve call sites with exactly
	// the same strategy resolveEdges used.
	taken    []*types.Func
	resolver *ifaceResolver
	// mvRefs is the lazy method-value collection behind methodValues.
	mvRefs      []methodValueRef
	mvCollected bool
}

// buildCallGraph constructs the graph for every package of mod.
func buildCallGraph(mod *Module) *callGraph {
	g := &callGraph{
		mod:     mod,
		nodes:   make(map[*types.Func]*cgNode),
		callers: make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range mod.Packages() {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue // type checking failed for this declaration
				}
				g.funcs = append(g.funcs, fn)
				g.nodes[fn] = &cgNode{fn: fn, pkg: pkg, decl: fd}
			}
		}
	}
	g.taken = g.addressTaken()
	g.resolver = &ifaceResolver{graph: g, cache: make(map[*types.Func][]*types.Func)}
	for _, fn := range g.funcs {
		g.resolveEdges(g.nodes[fn])
	}
	for _, fn := range g.funcs {
		for _, callee := range g.nodes[fn].callees {
			g.callers[callee] = append(g.callers[callee], fn)
		}
	}
	return g
}

// node returns the graph node for fn, or nil when fn is not a module
// function with a body.
func (g *callGraph) node(fn *types.Func) *cgNode { return g.nodes[fn] }

// addressTaken returns the module functions whose address is taken — any
// reference to a declared function outside the callee position of a call
// expression, in a function body or a package-level variable initialiser.
// These are the possible targets of indirect calls through func values.
func (g *callGraph) addressTaken() []*types.Func {
	seen := make(map[*types.Func]bool)
	var out []*types.Func
	for _, pkg := range g.mod.Packages() {
		for _, file := range pkg.Files {
			// Positions of expressions in callee position: references
			// there are calls, not value uses.
			callees := make(map[ast.Expr]bool)
			ast.Inspect(file, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					callees[stripParens(call.Fun)] = true
				}
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[id].(*types.Func)
				if !ok || fn.Type().(*types.Signature).Recv() != nil {
					return true // methods: see the package comment
				}
				if callees[ast.Expr(id)] {
					return true
				}
				// pkg.F in callee position appears as a SelectorExpr in
				// callees; the inner ident must not count as taken.
				if g.nodes[fn] != nil && !g.selIsCallee(callees, file, id) {
					if !seen[fn] {
						seen[fn] = true
						out = append(out, fn)
					}
				}
				return true
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// selIsCallee reports whether ident id is the Sel of a qualified
// reference (pkg.F or x.M) that itself sits in callee position.
func (g *callGraph) selIsCallee(callees map[ast.Expr]bool, file *ast.File, id *ast.Ident) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel != id {
			return true
		}
		if callees[ast.Expr(sel)] {
			found = true
		}
		return false
	})
	return found
}

// stripParens removes any parenthesis wrapping from e.
func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// resolvedCall is the outcome of resolving one call expression: the
// module-internal targets it may reach, the receiver expression when the
// call is a method call on a value (nil otherwise), and whether the
// targets came from an indirect (func-value or interface) dispatch —
// indirect targets have no usable receiver/argument binding for effect
// mapping, only for graph edges.
type resolvedCall struct {
	targets  []*types.Func
	recv     ast.Expr
	indirect bool
}

// resolveCallSite resolves one call expression in pkg with the same
// strategy resolveEdges documents at the top of this file. It is shared
// by edge construction and the write-effect pass so both see identical
// dispatch.
func (g *callGraph) resolveCallSite(pkg *Package, call *ast.CallExpr) resolvedCall {
	var rc resolvedCall
	add := func(fn *types.Func) {
		if fn != nil && g.nodes[fn] != nil {
			rc.targets = append(rc.targets, fn)
		}
	}
	fun := stripParens(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			add(obj)
		case *types.Var:
			rc.indirect = true
			for _, fn := range g.indirectTargets(obj.Type()) {
				add(fn)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			// Method call or func-typed field call on a value.
			switch sel.Kind() {
			case types.MethodVal:
				m := sel.Obj().(*types.Func)
				if types.IsInterface(sel.Recv()) {
					rc.recv = fun.X
					for _, impl := range g.resolver.implementations(sel.Recv(), m) {
						add(impl)
					}
				} else {
					rc.recv = fun.X
					add(m)
				}
			case types.FieldVal:
				rc.indirect = true
				if v, ok := sel.Obj().(*types.Var); ok {
					for _, fn := range g.indirectTargets(v.Type()) {
						add(fn)
					}
				}
			}
		} else {
			// Qualified reference: pkg.F or pkg.Var.
			switch obj := pkg.Info.Uses[fun.Sel].(type) {
			case *types.Func:
				add(obj)
			case *types.Var:
				rc.indirect = true
				for _, fn := range g.indirectTargets(obj.Type()) {
					add(fn)
				}
			}
		}
	default:
		// Call of a call result or other computed func value.
		rc.indirect = true
		if tv, ok := pkg.Info.Types[fun]; ok && tv.Type != nil {
			for _, fn := range g.indirectTargets(tv.Type) {
				add(fn)
			}
		}
	}
	return rc
}

// resolveEdges walks node's body (including function literals) and
// records every resolvable callee.
func (g *callGraph) resolveEdges(node *cgNode) {
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		rc := g.resolveCallSite(node.pkg, call)
		node.callees = append(node.callees, rc.targets...)
		return true
	})
	node.callees = dedupeFuncs(node.callees)
}

// indirectTargets returns the possible targets of an indirect call
// through a value of func type typ: every address-taken module function
// with an identical signature.
func (g *callGraph) indirectTargets(typ types.Type) []*types.Func {
	sig, ok := typ.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, fn := range g.taken {
		if types.Identical(fn.Type(), sig) {
			out = append(out, fn)
		}
	}
	return out
}

// dedupeFuncs removes duplicates and sorts by declaration position for
// deterministic edge order.
func dedupeFuncs(fns []*types.Func) []*types.Func {
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	out := fns[:0]
	var prev *types.Func
	for _, fn := range fns {
		if fn != prev {
			out = append(out, fn)
		}
		prev = fn
	}
	return out
}

// ifaceResolver performs class-hierarchy analysis: given an interface
// method, it returns the corresponding concrete methods of every module
// type implementing the interface. Results are memoised per interface
// method. It is built and exercised single-threaded, before the parallel
// per-package phase reads the finished graph.
type ifaceResolver struct {
	graph *callGraph
	// namedTypes caches the module's named (non-interface) types in
	// deterministic order, collected lazily on first use.
	namedTypes []*types.Named
	collected  bool
	cache      map[*types.Func][]*types.Func
}

// implementations resolves interface method m of interface type recv.
func (r *ifaceResolver) implementations(recv types.Type, m *types.Func) []*types.Func {
	if impls, ok := r.cache[m]; ok {
		return impls
	}
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var impls []*types.Func
	for _, named := range r.moduleNamedTypes() {
		var recvType types.Type = named
		if !types.Implements(recvType, iface) {
			recvType = types.NewPointer(named)
			if !types.Implements(recvType, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recvType, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok && r.graph.nodes[fn] != nil {
			impls = append(impls, fn)
		}
	}
	impls = dedupeFuncs(impls)
	r.cache[m] = impls
	return impls
}

// moduleNamedTypes collects every named non-interface type declared in
// the module, in deterministic (package path, scope name) order.
func (r *ifaceResolver) moduleNamedTypes() []*types.Named {
	if r.collected {
		return r.namedTypes
	}
	r.collected = true
	for _, pkg := range r.graph.mod.Packages() {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			r.namedTypes = append(r.namedTypes, named)
		}
	}
	return r.namedTypes
}

// funcDisplay renders fn for path traces: "pkg.Name" for functions,
// "pkg.(*Recv).Name" / "pkg.Recv.Name" for methods.
func funcDisplay(fn *types.Func) string {
	name := fn.Name()
	sig := fn.Type().(*types.Signature)
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name() + "."
	}
	recv := sig.Recv()
	if recv == nil {
		return pkgName + name
	}
	t := recv.Type()
	ptr := ""
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
		ptr = "*"
	}
	recvName := "?"
	if named, ok := t.(*types.Named); ok {
		recvName = named.Obj().Name()
	}
	if ptr != "" {
		return pkgName + "(" + ptr + recvName + ")." + name
	}
	return pkgName + recvName + "." + name
}

// methodValueRef is one method referenced as a bound method value
// (`x.M` outside callee position) somewhere in the module, with the
// receiver-stripped signature the value carries.
type methodValueRef struct {
	fn  *types.Func
	sig *types.Signature
}

// methodValues lazily collects every bound-method-value reference in the
// module. The general call graph deliberately excludes these (see the
// package comment); the shard-ownership pass uses them only to resolve
// the job value handed to sim.Pool.Do, where the zero-alloc idiom stores
// a method value in a field once and passes it every cycle.
func (g *callGraph) methodValues() []methodValueRef {
	if g.mvCollected {
		return g.mvRefs
	}
	g.mvCollected = true
	for _, pkg := range g.mod.Packages() {
		for _, file := range pkg.Files {
			callees := make(map[ast.Expr]bool)
			ast.Inspect(file, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					callees[stripParens(call.Fun)] = true
				}
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || callees[ast.Expr(sel)] {
					return true
				}
				s, ok := pkg.Info.Selections[sel]
				if !ok || s.Kind() != types.MethodVal {
					return true
				}
				tv, ok := pkg.Info.Types[sel]
				if !ok || tv.Type == nil {
					return true
				}
				sig, ok := tv.Type.Underlying().(*types.Signature)
				if !ok {
					return true
				}
				if fn, ok := s.Obj().(*types.Func); ok && g.nodes[fn] != nil {
					g.mvRefs = append(g.mvRefs, methodValueRef{fn: fn, sig: sig})
				}
				return true
			})
		}
	}
	sort.Slice(g.mvRefs, func(i, j int) bool { return g.mvRefs[i].fn.Pos() < g.mvRefs[j].fn.Pos() })
	return g.mvRefs
}

// lookupFunc finds the node for the function or method named name (plain
// "F" or "Recv.M") in the package with import path pkgPath.
func (g *callGraph) lookupFunc(pkgPath, name string) *cgNode {
	recv, base, isMethod := strings.Cut(name, ".")
	if !isMethod {
		base, recv = name, ""
	}
	for _, fn := range g.funcs {
		node := g.nodes[fn]
		if node.pkg.Path != pkgPath || fn.Name() != base {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if recv == "" {
			if sig.Recv() == nil {
				return node
			}
			continue
		}
		if sig.Recv() == nil {
			continue
		}
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == recv {
			return node
		}
	}
	return nil
}
