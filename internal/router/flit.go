// Package router implements the cycle-accurate virtual-channel router
// model of the paper's methodology: a three-stage pipeline (lookahead
// route computation overlapped with VC and switch allocation, then switch
// traversal, then link traversal), wormhole switching, credit-based
// virtual-channel flow control, and a pluggable switch allocator driving
// either the conventional P x P crossbar or the paper's kP x P virtual
// input crossbar.
package router

import "fmt"

// FlitType distinguishes the positions of a flit within its packet.
type FlitType uint8

// Flit positions. A single-flit packet is HeadTail.
const (
	Head FlitType = iota
	Body
	Tail
	HeadTail
)

// IsHead reports whether the flit opens a packet (Head or HeadTail).
func (ft FlitType) IsHead() bool { return ft == Head || ft == HeadTail }

// IsTail reports whether the flit closes a packet (Tail or HeadTail).
func (ft FlitType) IsTail() bool { return ft == Tail || ft == HeadTail }

func (ft FlitType) String() string {
	switch ft {
	case Head:
		return "head"
	case Body:
		return "body"
	case Tail:
		return "tail"
	case HeadTail:
		return "headtail"
	default:
		return fmt.Sprintf("flittype(%d)", uint8(ft))
	}
}

// Flit is the unit of flow control. Flits of one packet follow the same
// path and VC sequence (wormhole switching).
type Flit struct {
	PacketID uint64
	Type     FlitType
	Src, Dst int // terminal node ids
	// Tag is an opaque workload identifier (e.g. the memory transaction
	// a trace-driven packet belongs to).
	Tag uint64
	// Seq is the flit's index within its packet; PacketSize the total.
	Seq, PacketSize int

	// Route is the output port at the router currently buffering the
	// flit, computed at arrival (lookahead route computation keeps this
	// off the critical path; the model computes it on delivery).
	Route int

	// VC is the virtual channel the flit occupies at the current router;
	// rewritten to the allocated output VC on switch traversal.
	VC int

	// CreateCycle is when the packet was generated at the source
	// (including source-queue time in latency), InjectCycle when its head
	// entered the network, EjectCycle when this flit left at the
	// destination.
	CreateCycle, InjectCycle, EjectCycle int64

	// Hops counts router-to-router link traversals.
	Hops int
}

// PacketFlitType returns the FlitType of the i-th flit of a size-flit
// packet: HeadTail for single-flit packets, else Head, Body..., Tail.
func PacketFlitType(i, size int) FlitType {
	switch {
	case size == 1:
		return HeadTail
	case i == 0:
		return Head
	case i == size-1:
		return Tail
	default:
		return Body
	}
}

// NewPacket builds the flit sequence for one packet of size flits.
func NewPacket(id uint64, src, dst, size int, createCycle int64) []*Flit {
	if size <= 0 {
		panic("router: packet size must be positive")
	}
	flits := make([]*Flit, size)
	for i := range flits {
		ft := PacketFlitType(i, size)
		flits[i] = &Flit{
			PacketID:    id,
			Type:        ft,
			Src:         src,
			Dst:         dst,
			Seq:         i,
			PacketSize:  size,
			CreateCycle: createCycle,
			Route:       -1,
			VC:          -1,
		}
	}
	return flits
}
