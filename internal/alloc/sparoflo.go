package alloc

import "vix/internal/arb"

// Sparoflo approximates the SPAROFLO switch allocator of Kumar et al.
// (ICCD 2007), discussed in the paper's related work: more than one
// request per input port is presented to the output arbiters, but the
// crossbar remains a conventional P x P — only one request per physical
// input port can ultimately be granted. Conflicts where two output
// arbiters select different VCs of the same input port are therefore
// detected *after* output arbitration and resolved by priority, losing
// the extra grants.
//
// This is the paper's sharpest contrast with VIX: both expose more
// requests to the outputs, but without virtual inputs the exposed
// parallelism cannot be cashed in. The expected ordering — IF <=
// SPAROFLO <= VIX — is asserted by the test suite and measurable with
// the ablation benchmarks.
type Sparoflo struct {
	cfg Config
	// exposed is how many VC requests per input port are presented to
	// output arbitration (SPAROFLO varies this with load; the model
	// exposes up to two, matching its low/medium-load behaviour).
	exposed    int
	inputArbs  []arb.Arbiter // per port, over VCs: picks exposure order
	outputArbs []arb.Arbiter // per output, over Ports*exposed candidates
	portPick   []arb.Arbiter // per port, over outputs: resolves conflicts
}

// NewSparoflo returns a SPAROFLO-style allocator exposing up to two
// requests per input port. It panics if cfg is invalid. SPAROFLO is
// defined on the conventional crossbar; VirtualInputs is ignored for
// grant geometry (grants always report the k=1 row mapping of cfg).
func NewSparoflo(cfg Config) *Sparoflo {
	mustValidate(cfg)
	s := &Sparoflo{cfg: cfg, exposed: 2}
	if cfg.VCs < 2 {
		s.exposed = 1
	}
	s.inputArbs = make([]arb.Arbiter, cfg.Ports)
	s.portPick = make([]arb.Arbiter, cfg.Ports)
	for i := range s.inputArbs {
		s.inputArbs[i] = arb.NewRoundRobin(cfg.VCs)
		s.portPick[i] = arb.NewRoundRobin(cfg.Ports)
	}
	s.outputArbs = make([]arb.Arbiter, cfg.Ports)
	for i := range s.outputArbs {
		s.outputArbs[i] = arb.NewRoundRobin(cfg.Ports * s.exposed)
	}
	return s
}

// Name implements Allocator.
func (s *Sparoflo) Name() string { return "sparoflo" }

// Reset implements Allocator.
func (s *Sparoflo) Reset() {
	for _, a := range s.inputArbs {
		a.Reset()
	}
	for _, a := range s.outputArbs {
		a.Reset()
	}
	for _, a := range s.portPick {
		a.Reset()
	}
}

// Allocate implements Allocator.
func (s *Sparoflo) Allocate(rs *RequestSet) []Grant {
	ports := s.cfg.Ports
	// Per port, select up to `exposed` candidate requests with the input
	// arbiter (rotating priority across VCs).
	type candidate struct {
		reqIdx int
		port   int
		lane   int // exposure lane within the port
	}
	perPort := make([][]int, ports) // request indices by port
	vcOf := make([][]bool, ports)
	vcReq := make([][]int, ports)
	for p := 0; p < ports; p++ {
		vcOf[p] = make([]bool, s.cfg.VCs)
		vcReq[p] = make([]int, s.cfg.VCs)
		for v := range vcReq[p] {
			vcReq[p][v] = -1
		}
	}
	for idx, r := range rs.Requests {
		if vcReq[r.Port][r.VC] < 0 {
			vcOf[r.Port][r.VC] = true
			vcReq[r.Port][r.VC] = idx
			perPort[r.Port] = append(perPort[r.Port], idx)
		}
	}
	cands := make([]candidate, 0, ports*s.exposed)
	for p := 0; p < ports; p++ {
		avail := append([]bool(nil), vcOf[p]...)
		for lane := 0; lane < s.exposed; lane++ {
			vc := s.inputArbs[p].Arbitrate(avail)
			if vc < 0 {
				break
			}
			avail[vc] = false
			cands = append(cands, candidate{reqIdx: vcReq[p][vc], port: p, lane: lane})
			if lane == 0 {
				s.inputArbs[p].Ack(vc)
			}
		}
	}

	// Output arbitration over the exposed candidates.
	line := func(c candidate) int { return c.port*s.exposed + c.lane }
	outWinner := make([]int, ports) // candidate index per output, -1 none
	for out := range outWinner {
		outWinner[out] = -1
	}
	reqVec := make([]bool, ports*s.exposed)
	byLine := make([]int, ports*s.exposed)
	for out := 0; out < ports; out++ {
		for i := range reqVec {
			reqVec[i] = false
			byLine[i] = -1
		}
		any := false
		for ci, c := range cands {
			if rs.Requests[c.reqIdx].OutPort != out {
				continue
			}
			reqVec[line(c)] = true
			byLine[line(c)] = ci
			any = true
		}
		if !any {
			continue
		}
		l := s.outputArbs[out].Arbitrate(reqVec)
		outWinner[out] = byLine[l]
		s.outputArbs[out].Ack(l)
	}

	// Conflict detection: multiple outputs may have picked VCs of the
	// same input port; only one can use the port's single crossbar
	// input. The port's rotating priority chooses which grant survives.
	winsOf := make([][]bool, ports) // per port: which outputs won it
	for out, ci := range outWinner {
		if ci < 0 {
			continue
		}
		p := cands[ci].port
		if winsOf[p] == nil {
			winsOf[p] = make([]bool, ports)
		}
		winsOf[p][out] = true
	}
	var grants []Grant
	for p := 0; p < ports; p++ {
		if winsOf[p] == nil {
			continue
		}
		out := s.portPick[p].Arbitrate(winsOf[p])
		s.portPick[p].Ack(out)
		r := rs.Requests[cands[outWinner[out]].reqIdx]
		grants = append(grants, Grant{Port: r.Port, VC: r.VC, OutPort: out, Row: rs.Config.Row(r.Port, r.VC)})
	}
	return grants
}
