package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vix/internal/lint"
)

// escapeModule is a one-package module with a marked hot function whose
// unmarked helper leaks a slice to a package global — the escape must
// be attributed through cone expansion, not the marker's own body.
func escapeModule() map[string]string {
	return map[string]string{
		"go.mod": "module fix\n\ngo 1.22\n",
		"hot/hot.go": `package hot

// Sink keeps helper's slice alive so the compiler must heap-allocate.
var Sink []int

//vixlint:hot
func Work(n int) int {
	return len(helper(n))
}

// helper is in Work's cone without a marker of its own.
func helper(n int) []int {
	s := make([]int, n)
	Sink = s
	return s
}
`,
	}
}

// checkEscapes is the test harness around lint.CheckEscapes.
func checkEscapes(t *testing.T, root string, opts lint.EscapeOptions) ([]lint.Finding, lint.EscapeStats) {
	t.Helper()
	fs, stats, err := lint.CheckEscapes(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	return fs, stats
}

// TestEscapeGateLifecycle walks the gate through its whole protocol:
// missing golden fails, -update-escapes records the baseline through
// cone expansion, the warm-skip state makes reruns free, and a fresh
// escape in the hot cone fails with escape/new at its exact line.
func TestEscapeGateLifecycle(t *testing.T) {
	root := writeTree(t, escapeModule())
	opts := lint.EscapeOptions{Cache: true}

	// No committed golden: the gate must fail, not silently pass.
	fs, _ := checkEscapes(t, root, opts)
	if len(fs) != 1 || fs[0].Rule != "escape/golden" {
		t.Fatalf("without golden: findings = %v; want exactly one escape/golden", renderAll(fs))
	}

	// Record the baseline.
	fs, stats := checkEscapes(t, root, lint.EscapeOptions{Update: true, Cache: true})
	if len(fs) != 0 {
		t.Fatalf("update run reported findings: %v", renderAll(fs))
	}
	if stats.HotFuncs != 1 || stats.ConeFuncs < 2 {
		t.Errorf("stats = %+v; want 1 hot func and a cone that includes helper", stats)
	}
	if stats.Diags == 0 {
		t.Errorf("stats = %+v; want the helper escape attributed to the cone", stats)
	}
	golden, err := os.ReadFile(filepath.Join(root, ".vixlint", "escapes.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(golden), "hot.helper") {
		t.Errorf("golden does not attribute the escape to the unmarked cone member:\n%s", golden)
	}

	// Clean diff, then a warm skip that never builds or type-checks.
	fs, stats = checkEscapes(t, root, opts)
	if len(fs) != 0 {
		t.Fatalf("clean module reported findings: %v", renderAll(fs))
	}
	fs, stats = checkEscapes(t, root, opts)
	if len(fs) != 0 || !stats.Cached || stats.Analyzed != 0 {
		t.Errorf("warm run: findings = %v, stats = %+v; want cached skip with 0 analyzed", renderAll(fs), stats)
	}

	// A new escape in the marked function itself must fail the gate.
	hotFile := filepath.Join(root, "hot", "hot.go")
	src, err := os.ReadFile(hotFile)
	if err != nil {
		t.Fatal(err)
	}
	leaky := strings.Replace(string(src), "return len(helper(n))",
		"Sink = make([]int, n+1)\n\treturn len(helper(n))", 1)
	if leaky == string(src) {
		t.Fatal("escape splice found nothing to replace")
	}
	if err := os.WriteFile(hotFile, []byte(leaky), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, stats = checkEscapes(t, root, opts)
	if stats.Cached {
		t.Errorf("edited module still served from warm-skip state")
	}
	var hit bool
	for _, f := range fs {
		if f.Rule == "escape/new" && strings.Contains(f.Msg, "hot.Work") &&
			strings.HasSuffix(f.Pos.Filename, "hot.go") && f.Pos.Line > 0 {
			hit = true
		}
	}
	if !hit {
		t.Errorf("seeded escape not reported: findings = %v", renderAll(fs))
	}

	// A golden entry the compiler no longer emits must also fail
	// (stale baseline).
	if err := os.WriteFile(hotFile, src, 0o644); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join(root, ".vixlint", "escapes.golden")
	stale := append(golden, []byte("1\thot.Work\tbogus escapes to heap\n")...)
	if err := os.WriteFile(goldenPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	fs, _ = checkEscapes(t, root, opts)
	var gone bool
	for _, f := range fs {
		if f.Rule == "escape/gone" && strings.HasSuffix(f.Pos.Filename, "escapes.golden") {
			gone = true
		}
	}
	if !gone {
		t.Errorf("stale golden entry not reported: findings = %v", renderAll(fs))
	}
}

// TestEscapeGateMarkerMustAttach: a //vixlint:hot marker that is not a
// function declaration's doc comment watches nothing and must be
// reported rather than ignored.
func TestEscapeGateMarkerMustAttach(t *testing.T) {
	files := escapeModule()
	files["hot/stray.go"] = `package hot

//vixlint:hot
var Stray int
`
	root := writeTree(t, files)
	fs, _ := checkEscapes(t, root, lint.EscapeOptions{Update: true})
	var hit bool
	for _, f := range fs {
		if f.Rule == "escape/marker" && strings.HasSuffix(f.Pos.Filename, "stray.go") {
			hit = true
		}
	}
	if !hit {
		t.Errorf("stray marker not reported: findings = %v", renderAll(fs))
	}
}

// TestEscapeGateToolchainSkew: a golden recorded under a different go
// major.minor skips the diff (escape verdicts drift between releases)
// and says so in the stats instead of failing on compiler drift.
func TestEscapeGateToolchainSkew(t *testing.T) {
	root := writeTree(t, escapeModule())
	if _, _, err := lint.CheckEscapes(root, lint.EscapeOptions{Update: true}); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join(root, ".vixlint", "escapes.golden")
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	skewed := strings.Replace(string(golden), "\ngo go1.", "\ngo go0.", 1)
	if skewed == string(golden) {
		t.Skip("running toolchain is not a released go1.x; skew splice does not apply")
	}
	if err := os.WriteFile(goldenPath, []byte(skewed), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, stats := checkEscapes(t, root, lint.EscapeOptions{})
	if len(fs) != 0 {
		t.Errorf("skewed toolchain reported findings: %v", renderAll(fs))
	}
	if stats.GoSkew == "" {
		t.Errorf("stats = %+v; want GoSkew explaining the skipped diff", stats)
	}
}
