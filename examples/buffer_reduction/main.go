// Buffer reduction (Section 4.6 of the paper): VIX's throughput headroom
// can be traded for smaller routers. This example compares a baseline
// router with 6 VCs per port against a VIX router with only 4 VCs per
// port — 33% fewer buffers — and shows the smaller VIX router still wins
// on saturation throughput.
package main

import (
	"fmt"
	"log"

	"vix"
)

func saturation(vcs, virtualInputs int) vix.Snapshot {
	topo := vix.NewMeshTopology(8, 8)
	policy := vix.PolicyMaxFree
	if virtualInputs > 1 {
		policy = vix.PolicyBalanced
	}
	n, err := vix.NewNetwork(vix.NetworkConfig{
		Topology: topo,
		Router: vix.RouterConfig{
			Ports: topo.Radix, VCs: vcs, VirtualInputs: virtualInputs, BufDepth: 5,
			AllocKind: vix.AllocSeparableIF, Policy: policy,
		},
		Pattern:      vix.NewUniformTraffic(topo.NumNodes),
		MaxInjection: true, // saturate every source
		PacketSize:   4,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	n.Warmup(2000)
	return n.Measure(6000)
}

func main() {
	big := saturation(6, 1)   // baseline: 6 VCs, conventional crossbar
	small := saturation(4, 2) // VIX: 4 VCs, two virtual inputs per port

	bufBig, bufSmall := 6*5, 4*5 // flit buffers per port
	fmt.Println("Trading VIX headroom for buffers (8x8 mesh at saturation)")
	fmt.Printf("%-28s %14s %14s\n", "", "6 VCs, no VIX", "4 VCs, 1:2 VIX")
	fmt.Printf("%-28s %14d %14d\n", "flit buffers per port", bufBig, bufSmall)
	fmt.Printf("%-28s %14.4f %14.4f\n", "throughput (flits/cyc/node)", big.ThroughputFlits, small.ThroughputFlits)
	fmt.Printf("%-28s %14.2f %14.2f\n", "avg latency (cycles)", big.AvgLatency, small.AvgLatency)
	fmt.Printf("\nVIX with %.0f%% fewer buffers changes throughput by %+.1f%% (paper: -33%% buffers, +10%% throughput).\n",
		100*(1-float64(bufSmall)/float64(bufBig)),
		100*(small.ThroughputFlits/big.ThroughputFlits-1))
}
