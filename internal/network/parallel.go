package network

import (
	"fmt"
	"math/bits"
	"runtime"

	"vix/internal/router"
	"vix/internal/sim"
	"vix/internal/stats"
	"vix/internal/topology"
)

// This file implements the two-phase parallel router tick selected by
// Config.Workers > 1. The determinism argument:
//
//   - Phase A (parallel): routers are block-partitioned by index into
//     shards, and each shard ticks its routers on one pool worker. Within
//     a cycle, a router tick reads and writes only router-local state —
//     input buffers, credit counters, arbiter pointers — because all
//     cross-router traffic travels through the delayed flitQ/credQ/ejectQ
//     wheels, which are only written in phase B and only read at the top
//     of the next Step. Phase A therefore computes, for every router, the
//     identical emissions and credits the serial loop would have, no
//     matter how shards are scheduled. Each shard also pre-computes the
//     lookahead routes of its link emissions (a pure topology function)
//     and accumulates the datapath activity counters into a private
//     stats.Delta.
//
//   - Phase B (stepping goroutine): shards are merged in router-index
//     order — every queue append, credit schedule, and counter merge
//     happens in exactly the order the serial loop performs them. Integer
//     counter merges are order-independent anyway; the queue appends are
//     what byte-identity actually rests on, and index-ordered merging
//     makes them literally identical.
//
// Traffic generation, injection, ejection, and the workload callbacks
// never leave the stepping goroutine: they own the RNG streams and the
// order-sensitive float latency accumulation.
//
// The shard scratch holds only slice headers: Router.Tick's returned
// emissions and credits are router-owned scratch valid until that
// router's next Tick, which cannot happen before phase B of this cycle
// completes, so no copying is needed and the steady state allocates
// nothing.

// tickShard is one contiguous block of routers plus the phase-A results
// its worker produced this cycle.
type tickShard struct {
	lo, hi int // router index range [lo, hi)

	ems   [][]router.Emission  // per router: Tick's emission scratch
	creds [][]router.CreditMsg // per router: Tick's credit scratch
	delta stats.Delta          // activity counters accumulated in phase A
}

// activeScratch is the phase-A state of the gated parallel tick: the
// cycle's worklist of active router indices, its contiguous split into
// per-worker segments, and per-index result slots. Pool.Do hands each
// segment to exactly one worker; segments partition the worklist and
// worklist entries name distinct routers, so job si owns its slice of
// index slots and routers exclusively — the same confinement argument as
// tickShard, with the per-cycle worklist split replacing the static
// block partition. Everything is sized once in initParallel; the
// per-cycle rebuilds of work and seg reuse their backing arrays, so the
// steady state allocates nothing.
type activeScratch struct {
	work     []int32              // active router indices, ascending
	seg      []int32              // segment si covers work[seg[si]:seg[si+1]]
	ems      [][]router.Emission  // per worklist index: Tick's emission scratch
	creds    [][]router.CreditMsg // per worklist index: Tick's credit scratch
	delta    []stats.Delta        // per segment: phase-A activity counters
	quiesced []bool               // per worklist index: Tick reported quiescence
	fn       func(int)            // runActive, bound once
}

// resolveWorkers maps Config.Workers onto an effective worker count:
// 0 is the serial loop, negative is GOMAXPROCS, positive is taken as
// given. Any result above 1 makes the network park pool goroutines
// between cycles — owners must call Close when done (vixlint's
// hygiene/close rule enforces this for cmd/ binaries).
func resolveWorkers(w int) int {
	switch {
	case w == 0:
		return 1
	case w < 0:
		return runtime.GOMAXPROCS(0)
	default:
		return w
	}
}

// initParallel builds the shard partition and worker pool when the
// configuration asks for a parallel tick. With one effective worker (or a
// one-router network) the network stays on the serial loop.
func (n *Network) initParallel() {
	workers := resolveWorkers(n.cfg.Workers)
	if workers > len(n.routers) {
		workers = len(n.routers)
	}
	if workers <= 1 {
		return
	}
	n.pool = sim.NewPool(workers)
	nr := len(n.routers)
	if n.actR != nil {
		// Gated: the pool fans out over contiguous segments of the
		// per-cycle worklist of active routers, instead of static shards.
		n.act = activeScratch{
			work:     make([]int32, 0, nr),
			seg:      make([]int32, 0, workers+1),
			ems:      make([][]router.Emission, nr),
			creds:    make([][]router.CreditMsg, nr),
			delta:    make([]stats.Delta, workers),
			quiesced: make([]bool, nr),
		}
		// Built once: handing a fresh method value to Pool.Do every cycle
		// would allocate.
		n.act.fn = n.runActive
		return
	}
	n.shards = make([]tickShard, workers)
	for i := range n.shards {
		lo, hi := nr*i/workers, nr*(i+1)/workers
		n.shards[i] = tickShard{
			lo: lo, hi: hi,
			ems:   make([][]router.Emission, hi-lo),
			creds: make([][]router.CreditMsg, hi-lo),
		}
	}
	// Built once, as above.
	n.shardFn = n.runShard
}

// runShard is phase A for one shard: tick the shard's routers, keep the
// per-router emission and credit slice headers, pre-compute lookahead
// routes for link emissions, and accumulate the activity counters the
// serial loop's forward() would have recorded.
//
//vixlint:hot
func (n *Network) runShard(si int) {
	s := &n.shards[si]
	var d stats.Delta
	for r := s.lo; r < s.hi; r++ {
		ems, creds, _ := n.routers[r].Tick()
		j := r - s.lo
		s.ems[j], s.creds[j] = ems, creds
		for _, e := range ems {
			d.BufferReads++
			d.XbarTraversals++
			conn := &n.topo.Conn[r][e.OutPort]
			if conn.Kind == topology.Link {
				d.LinkTraversals++
				f := n.flits.At(e.Flit)
				f.Route = n.route(n.topo, conn.PeerRouter, f.Dst)
			}
		}
	}
	s.delta = d
}

// runActive is phase A of the gated parallel tick for one worklist
// segment: fast-forward each of the segment's routers across its idle
// span, tick it, keep the emission and credit slice headers and the
// quiescence verdict in the worklist index's own slots, pre-compute
// lookahead routes for link emissions, and accumulate the activity
// counters the serial loop's forward() would have recorded.
//
//vixlint:hot
func (n *Network) runActive(si int) {
	var d stats.Delta
	for i := n.act.seg[si]; i < n.act.seg[si+1]; i++ {
		r := int(n.act.work[i])
		rt := n.routers[r]
		if skip := n.cycle - n.lastTick[r] - 1; skip > 0 {
			rt.SkipIdle(int(skip))
		}
		n.lastTick[r] = n.cycle
		ems, creds, quiesced := rt.Tick()
		n.act.ems[i], n.act.creds[i], n.act.quiesced[i] = ems, creds, quiesced
		for _, e := range ems {
			d.BufferReads++
			d.XbarTraversals++
			conn := &n.topo.Conn[r][e.OutPort]
			if conn.Kind == topology.Link {
				d.LinkTraversals++
				f := n.flits.At(e.Flit)
				f.Route = n.route(n.topo, conn.PeerRouter, f.Dst)
			}
		}
	}
	n.act.delta[si] = d
}

// tickActiveParallel builds the cycle's worklist from the activity words
// (ascending router order), splits it into one contiguous segment per
// worker, runs phase A across the pool, and merges in worklist — hence
// router-index — order on the stepping goroutine, clearing the bits of
// routers that quiesced.
func (n *Network) tickActiveParallel() {
	work := n.act.work[:0]
	for wi, w := range n.actR {
		for ; w != 0; w &= w - 1 {
			work = append(work, int32(wi<<6+bits.TrailingZeros64(w)))
		}
	}
	n.act.work = work
	n.routerTicks += int64(len(work))
	k := n.pool.Workers()
	if k > len(work) {
		k = len(work)
	}
	if k == 0 {
		return
	}
	seg := n.act.seg[:0]
	for i := 0; i <= k; i++ {
		seg = append(seg, int32(len(work)*i/k))
	}
	n.act.seg = seg
	n.pool.Do(k, n.act.fn)
	for si := 0; si < k; si++ {
		n.col.Merge(n.act.delta[si])
		for i := seg[si]; i < seg[si+1]; i++ {
			r := int(work[i])
			for _, e := range n.act.ems[i] {
				n.deliverEmission(r, e)
			}
			for _, cm := range n.act.creds[i] {
				n.scheduleCredit(r, cm)
			}
			if n.act.quiesced[i] {
				n.actR.Clear(r)
			}
		}
	}
}

// tickRoutersParallel runs phase A across the pool, then merges every
// shard in router-index order on the stepping goroutine.
func (n *Network) tickRoutersParallel() {
	n.pool.Do(len(n.shards), n.shardFn)
	for si := range n.shards {
		s := &n.shards[si]
		n.col.Merge(s.delta)
		for j := range s.ems {
			r := s.lo + j
			for _, e := range s.ems[j] {
				n.deliverEmission(r, e)
			}
			for _, cm := range s.creds[j] {
				n.scheduleCredit(r, cm)
			}
		}
	}
}

// deliverEmission is the phase-B half of forward: the emission's route
// and activity counters were already handled in the shard tick, so only
// the order-sensitive queue append remains.
func (n *Network) deliverEmission(r int, e router.Emission) {
	conn := n.topo.Conn[r][e.OutPort]
	arrive := int((n.cycle + int64(n.cfg.HopDelay)) % int64(n.qlen))
	switch conn.Kind {
	case topology.Link:
		n.flitQ[arrive] = append(n.flitQ[arrive], flitDelivery{
			router: conn.PeerRouter, port: conn.PeerPort, vc: n.flits.At(e.Flit).VC, flit: e.Flit,
		})
	case topology.Local:
		n.ejectQ[arrive] = append(n.ejectQ[arrive], e.Flit)
	default:
		panic(fmt.Sprintf("network: emission through unused port %d of router %d", e.OutPort, r))
	}
}

// Workers returns the effective parallel-tick worker count (1 for the
// serial loop).
func (n *Network) Workers() int {
	if n.pool == nil {
		return 1
	}
	return n.pool.Workers()
}

// Close releases the parallel-tick workers parked between cycles. It is
// a no-op for serial networks and is idempotent; a closed network may
// even keep stepping (the pool restarts its workers lazily), but callers
// that construct many parallel networks — sweeps, tests — should Close
// each one when done so parked goroutines do not accumulate.
func (n *Network) Close() {
	if n.pool != nil {
		n.pool.Close()
	}
}
