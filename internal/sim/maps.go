package sim

import "sort"

// ordered covers the key types simulation maps use. (cmp.Ordered minus
// the float and string-alias cases we have no use for would be shorter,
// but mirroring the stdlib constraint keeps the helper unsurprising.)
type ordered interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64 | ~string
}

// SortedKeys returns m's keys in ascending order. Go randomises map
// iteration order per run, so ranging over a map is forbidden in
// simulation code whenever order can reach results (vixlint rule
// determinism/maprange); iterating SortedKeys(m) is the blessed
// deterministic alternative.
func SortedKeys[K ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m { //vixlint:ordered keys are sorted below before being returned
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
