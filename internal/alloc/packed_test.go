package alloc

import (
	"testing"

	"vix/internal/arb"
	"vix/internal/sim"
)

// denseSeparableIF is a test-local reference copy of the input-first
// separable allocator written with dense O(Rows) and O(Ports x Rows)
// scans — the algorithm as specified, without the packed occupancy-word
// walks the production SeparableIF uses. The differential test below
// runs both in lockstep; any divergence means the packed walks changed
// behaviour, not just cost.
type denseSeparableIF struct {
	cfg        Config
	inputArbs  []arb.Arbiter
	outputArbs []arb.Arbiter

	slotReq   []bool
	rowReq    []bool
	candidate []int
	slotToReq []int
	rows      [][]int
	grants    []Grant
}

func newDenseSeparableIF(cfg Config) *denseSeparableIF {
	d := &denseSeparableIF{
		cfg:       cfg,
		slotReq:   make([]bool, cfg.GroupSize()),
		rowReq:    make([]bool, cfg.Rows()),
		candidate: make([]int, cfg.Rows()),
		slotToReq: make([]int, cfg.GroupSize()),
		rows:      make([][]int, cfg.Rows()),
	}
	d.inputArbs = make([]arb.Arbiter, cfg.Rows())
	for i := range d.inputArbs {
		d.inputArbs[i] = arb.NewRoundRobin(cfg.GroupSize())
	}
	d.outputArbs = make([]arb.Arbiter, cfg.Ports)
	for i := range d.outputArbs {
		d.outputArbs[i] = arb.NewRoundRobin(cfg.Rows())
	}
	return d
}

func (d *denseSeparableIF) allocate(rs *RequestSet) []Grant {
	for i := range d.rows {
		d.rows[i] = d.rows[i][:0]
	}
	for i, r := range rs.Requests {
		row := rs.Config.Row(r.Port, r.VC)
		d.rows[row] = append(d.rows[row], i)
	}

	for row := range d.candidate {
		d.candidate[row] = -1
		if len(d.rows[row]) == 0 {
			continue
		}
		for i := range d.slotReq {
			d.slotReq[i] = false
		}
		for i := range d.slotToReq {
			d.slotToReq[i] = -1
		}
		for _, idx := range d.rows[row] {
			slot := d.cfg.Slot(rs.Requests[idx].VC)
			if d.slotToReq[slot] < 0 {
				d.slotToReq[slot] = idx
			}
		}
		for slot, reqIdx := range d.slotToReq {
			d.slotReq[slot] = reqIdx >= 0
		}
		if slot := d.inputArbs[row].Arbitrate(d.slotReq); slot >= 0 {
			d.candidate[row] = d.slotToReq[slot]
		}
	}

	d.grants = d.grants[:0]
	for out := 0; out < d.cfg.Ports; out++ {
		for i := range d.rowReq {
			d.rowReq[i] = false
		}
		any := false
		for row, reqIdx := range d.candidate {
			if reqIdx >= 0 && rs.Requests[reqIdx].OutPort == out {
				d.rowReq[row] = true
				any = true
			}
		}
		if !any {
			continue
		}
		row := d.outputArbs[out].Arbitrate(d.rowReq)
		req := rs.Requests[d.candidate[row]]
		d.grants = append(d.grants, Grant{Req: d.candidate[row], OutPort: out, Row: row})
		d.outputArbs[out].Ack(row)
		d.inputArbs[row].Ack(d.cfg.Slot(req.VC))
	}
	return d.grants
}

// TestSeparableIFMatchesDenseReference runs the packed production
// allocator and the dense reference in lockstep on identical request
// streams — load swinging between saturation, trickle, and silence so
// stale-scratch bugs would surface — and demands identical grant
// sequences every cycle. The 16-port ideal-VIX geometry pushes Rows past
// 64, covering the multi-word bitset paths.
func TestSeparableIFMatchesDenseReference(t *testing.T) {
	for _, cfg := range []Config{
		{Ports: 5, VCs: 4, VirtualInputs: 1},
		{Ports: 5, VCs: 6, VirtualInputs: 2},
		{Ports: 8, VCs: 6, VirtualInputs: 6},
		{Ports: 16, VCs: 8, VirtualInputs: 8}, // Rows = 128: two occupancy words
	} {
		packed := NewSeparableIF(cfg)
		dense := newDenseSeparableIF(cfg)
		rng := sim.NewRNG(404)
		loads := []float64{0.9, 0.05, 0, 0.5, 0, 0.95, 0.1}
		for cycle := 0; cycle < 400; cycle++ {
			rs := randomRequestSet(rng, cfg, loads[cycle%len(loads)])
			gp, gd := packed.Allocate(rs), dense.allocate(rs)
			if len(gp) != len(gd) {
				t.Fatalf("cfg %+v cycle %d: packed granted %d, dense %d", cfg, cycle, len(gp), len(gd))
			}
			for j := range gp {
				if gp[j] != gd[j] {
					t.Fatalf("cfg %+v cycle %d grant %d: packed %+v, dense %+v", cfg, cycle, j, gp[j], gd[j])
				}
			}
			if err := Validate(rs, gp); err != nil {
				t.Fatalf("cfg %+v cycle %d: %v", cfg, cycle, err)
			}
		}
	}
}

// TestAllocatorsSurviveLoadSwings hammers the occupancy-tracked scratch
// of every allocator with alternating saturated, sparse, and empty
// request sets: a cell or row left stale by a lazy clear would produce a
// grant with no matching request, which Validate rejects.
func TestAllocatorsSurviveLoadSwings(t *testing.T) {
	rng := sim.NewRNG(405)
	loads := []float64{0.95, 0, 0.02, 0.95, 0.02, 0}
	for _, kind := range Kinds() {
		cfg := Config{Ports: 8, VCs: 6, VirtualInputs: 2}
		switch kind {
		case KindIdeal:
			cfg.VirtualInputs = cfg.VCs
		case KindSparoflo:
			cfg.VirtualInputs = 1
		}
		a := MustNew(kind, cfg)
		for cycle := 0; cycle < 300; cycle++ {
			rs := randomRequestSet(rng, cfg, loads[cycle%len(loads)])
			if err := Validate(rs, a.Allocate(rs)); err != nil {
				t.Fatalf("%s cycle %d: %v", kind, cycle, err)
			}
		}
	}
}
