package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded pool of persistent worker goroutines for data-parallel
// fan-out of deterministic work: the per-cycle router tick of the network
// simulator and the per-job fan-out of the experiment harness both run on
// it. A Pool never owns ordering — Do hands the index space [0, n) out
// dynamically, so callers must ensure fn(i) touches only state owned by
// index i and must merge any cross-index effects in index order on their
// own goroutine. That split (scheduling here, ordering at the caller) is
// what keeps worker-count changes invisible in results.
//
// A Pool with one worker, or a one-task batch, runs entirely inline on the
// calling goroutine: no goroutines are spawned and no channel operations
// are performed, so serial configurations pay zero pool overhead. Workers
// are started lazily on the first parallel Do and park on a channel
// between batches; a warmed-up Do performs no heap allocations, which lets
// the network's per-cycle fan-out preserve the zero-allocation
// steady-state guarantee.
//
// A Pool is owned by a single orchestrating goroutine: Do and Close must
// not be invoked concurrently with each other or themselves. Concurrency
// in this repository is legal only in the packages named by the vixlint
// ConcurrencyAllowlist; sim hosts the one goroutine-spawning primitive the
// allowlisted orchestration layers share.
type Pool struct {
	workers int
	started bool
	start   chan struct{}

	// Batch state: written by Do before workers are released, read by
	// workers, and read back by Do after the final wg.Done. The channel
	// sends and the WaitGroup provide the happens-before edges.
	n    int
	fn   func(int)
	next atomic.Int64
	wg   sync.WaitGroup

	panicMu  sync.Mutex
	panicked bool
	panicVal any
}

// NewPool returns a pool of the given width. Values <= 0 select
// runtime.GOMAXPROCS(0). No goroutines are spawned until the first Do
// that can use them.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's width, including the calling goroutine.
func (p *Pool) Workers() int { return p.workers }

// Do runs fn(0) … fn(n-1) across the pool and returns when all calls have
// completed. The calling goroutine participates as a worker, so a pool of
// width w uses at most w-1 background goroutines. Indices are claimed
// dynamically (no static partition), and completion order is scheduling-
// dependent: fn must confine itself to per-index state.
//
// If any fn panics, the remaining indices claimed by that worker are
// skipped, every other worker drains normally, and Do re-panics on the
// calling goroutine with the first recovered value.
func (p *Pool) Do(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if p.workers <= 1 || n == 1 {
		// Inline path: no goroutines, no channels, no synchronisation.
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if !p.started {
		p.start = make(chan struct{})
		p.started = true
		for i := 0; i < p.workers-1; i++ {
			go p.worker(p.start)
		}
	}
	helpers := p.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	p.fn, p.n = fn, n
	p.next.Store(0)
	p.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		p.start <- struct{}{}
	}
	p.claim()
	p.wg.Wait()
	p.fn = nil
	if p.panicked {
		val := p.panicVal
		p.panicked, p.panicVal = false, nil
		panic(fmt.Sprintf("sim: pool task panicked: %v", val))
	}
}

// worker parks on the start channel between batches and exits when Close
// closes it. The channel is passed in rather than read from the struct:
// a worker spawned by Do may not get scheduled before the owner calls
// Close, and the field write there must not race with a field read here.
func (p *Pool) worker(start chan struct{}) {
	for range start {
		p.claim()
		p.wg.Done()
	}
}

// claim runs batch tasks until the index space is exhausted, recording
// (not propagating) the first panic so Do can re-raise it on the caller.
func (p *Pool) claim() {
	defer func() {
		if r := recover(); r != nil {
			p.panicMu.Lock()
			if !p.panicked {
				p.panicked, p.panicVal = true, r
			}
			p.panicMu.Unlock()
		}
	}()
	for {
		i := int(p.next.Add(1)) - 1
		if i >= p.n {
			return
		}
		p.fn(i)
	}
}

// Close releases the background workers. It is safe to call on a pool
// that never went parallel, and a later Do simply restarts the workers
// lazily; Close exists so long-lived owners (a parallel network, the
// harness) do not leak parked goroutines once they are done.
func (p *Pool) Close() {
	if !p.started {
		return
	}
	close(p.start)
	p.start = nil
	p.started = false
}
