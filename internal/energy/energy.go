// Package energy models network energy per bit (the paper's Figure 11).
// The paper built SPICE models of links, buffers, and switches, including
// clocking and leakage, and combined them with activity factors from
// cycle-accurate simulation; this package substitutes calibrated
// per-component energy constants driven by the same kind of activity
// counters (see DESIGN.md, "Substitutions").
//
// The component structure matches the paper: buffer read/write energy and
// link energy scale with flit activity; crossbar energy scales with the
// crossbar's port count (a kP x P VIX crossbar has longer output wires,
// so switch energy grows with k); clock and leakage accrue per router
// per cycle and are amortised over the delivered bits.
package energy

import (
	"errors"

	"vix/internal/stats"
)

// Params are per-component energy constants. Units are picojoules; the
// absolute scale is a 45 nm calibration, but the paper's Figure 11 claim
// (VIX raises total energy/bit by about 4% through the larger crossbar)
// is about the relative component structure.
type Params struct {
	// BufferWrite and BufferRead are pJ per bit per buffer access.
	BufferWrite float64
	BufferRead  float64
	// XbarPortUnit is pJ per bit per (inputs + outputs) port unit of the
	// traversed crossbar: matrix-crossbar wire length grows linearly in
	// each port count.
	XbarPortUnit float64
	// Link is pJ per bit per link traversal (1 mm inter-router wire).
	Link float64
	// ClockPerRouterCycle and LeakPerRouterCycle are pJ per router per
	// cycle. VIX adds input registers and crossbar area: each extra
	// virtual input per port multiplies clock by (1+ClockVIXFactor) and
	// leakage by (1+LeakVIXFactor).
	ClockPerRouterCycle float64
	LeakPerRouterCycle  float64
	ClockVIXFactor      float64
	LeakVIXFactor       float64
}

// DefaultParams returns the 45 nm calibration used for Figure 11. The
// component shares at the paper's operating point (mesh, 0.1
// packets/cycle/node, 4-flit 512-bit packets) are roughly: buffer 30%,
// switch 7%, link 36%, clock 16%, leakage 11% — typical published NoC
// breakdowns — which yields the paper's ~4% total increase when the
// crossbar grows from 5x5 to 10x5.
func DefaultParams() Params {
	return Params{
		BufferWrite:         0.071,
		BufferRead:          0.071,
		XbarPortUnit:        0.0037,
		Link:                0.203,
		ClockPerRouterCycle: 24.6,
		LeakPerRouterCycle:  16.9,
		ClockVIXFactor:      0.02,
		LeakVIXFactor:       0.05,
	}
}

// Breakdown is energy per delivered payload bit, by component (pJ/bit).
type Breakdown struct {
	Buffer  float64
	Switch  float64
	Link    float64
	Clock   float64
	Leakage float64
	Total   float64
}

// Network describes the simulated network the snapshot came from.
type Network struct {
	Routers  int
	XbarIn   int // crossbar inputs per router (k * radix)
	XbarOut  int // crossbar outputs per router (radix)
	K        int // virtual inputs per port
	FlitBits int // datapath width (128 in the paper)
}

// PerBit converts a measurement snapshot into an energy-per-bit breakdown.
func PerBit(p Params, s stats.Snapshot, nw Network) (Breakdown, error) {
	if s.FlitsEjected == 0 {
		return Breakdown{}, errors.New("energy: no delivered flits in snapshot")
	}
	if nw.FlitBits <= 0 || nw.Routers <= 0 {
		return Breakdown{}, errors.New("energy: invalid network description")
	}
	bits := float64(s.FlitsEjected) * float64(nw.FlitBits)
	fb := float64(nw.FlitBits)

	var b Breakdown
	b.Buffer = (float64(s.BufferWrites)*p.BufferWrite + float64(s.BufferReads)*p.BufferRead) * fb / bits
	xbarPerBit := p.XbarPortUnit * float64(nw.XbarIn+nw.XbarOut)
	b.Switch = float64(s.XbarTraversals) * xbarPerBit * fb / bits
	b.Link = float64(s.LinkTraversals) * p.Link * fb / bits

	extra := float64(nw.K - 1)
	routerCycles := float64(s.Cycles) * float64(nw.Routers)
	b.Clock = routerCycles * p.ClockPerRouterCycle * (1 + p.ClockVIXFactor*extra) / bits
	b.Leakage = routerCycles * p.LeakPerRouterCycle * (1 + p.LeakVIXFactor*extra) / bits

	b.Total = b.Buffer + b.Switch + b.Link + b.Clock + b.Leakage
	return b, nil
}
